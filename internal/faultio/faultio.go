// Package faultio is the deterministic fault-injection plane of the
// simulated SSD stack. A Plane compiles a declarative fault Program into
// an ssdio.Injector: every submission unit (one Sync call, one Psync
// call, one PsyncGang member batch) is ruled on by the program's rules —
// transient EIO with per-decision probability or scheduled vtime
// windows, permanent per-file failure, latency spikes, and stuck-op
// timeouts — with every outcome charged on the vtime clock.
//
// Decisions are pure functions of (seed, file, call kind, virtual time,
// request shape) via a splitmix64 hash, never of shared generator state,
// so concurrent goroutine schedules cannot reorder fault outcomes and
// runs stay byte-reproducible.
package faultio

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/flashsim"
	"repro/internal/ssdio"
	"repro/internal/vtime"
)

// Kind enumerates the injected fault classes.
type Kind int

const (
	// Transient fails the unit once with an EIO-like error; an immediate
	// retry re-rolls the dice (at a new vtime, so a new hash).
	Transient Kind = iota
	// Permanent fails the unit and marks the file dead: every later unit
	// on that file fails permanently too.
	Permanent
	// Latency completes the unit successfully after an extra Delay.
	Latency
	// Stuck blocks the unit for Delay (the caller's timeout window) and
	// then fails it transiently — a hung op that was given up on.
	Stuck
	// Stall completes the unit successfully after hanging until its stall
	// window closes — a correlated, device-wide GC pause rather than a
	// per-unit fault. Unlike Latency the wait is a non-responsive hang
	// (FaultDecision.Hang): a Space with an armed stuck-I/O watchdog
	// abandons it at the deadline with a transient ssdio.StuckError
	// instead of waiting the window out.
	Stall
	// ReadOnly marks the file's write path dead — the end-of-life failure
	// mode of real SSDs — failing every later unit that contains a write
	// while reads keep succeeding, so committed state stays evacuable.
	// Revive clears the mark.
	ReadOnly
)

// String names the kind for errors and stats.
func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case Latency:
		return "latency"
	case Stuck:
		return "stuck"
	case Stall:
		return "stall"
	case ReadOnly:
		return "readonly"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// defaultStuckDelay is the hang charged by a Stuck rule with no explicit
// delay.
const defaultStuckDelay = 10 * vtime.Millisecond

// Rule is one declarative fault clause. All set fields must match for
// the rule to be considered; a zero field matches anything.
type Rule struct {
	// File selects by file name: exact, "prefix*" glob, or "" for any.
	File string
	// Call selects the submission kind: ssdio.CallSync, CallPsync,
	// CallGang, or "" for any.
	Call string
	// From/Until bound the active vtime window [From, Until); Until 0
	// means no upper bound.
	From, Until vtime.Ticks
	// Kind is the fault class injected when the rule fires.
	Kind Kind
	// P is the per-decision firing probability; 0 means always (a
	// scheduled window rather than a probabilistic fault).
	P float64
	// Delay is the latency-spike length (Latency), the hang before the
	// timeout error (Stuck), the stall-window length (Stall), or extra
	// blocked time on a failure.
	Delay vtime.Ticks
	// Every, for Stall rules only, repeats the stall periodically: within
	// each Every-long period starting at From, the first Delay ticks are a
	// device-wide hang (a unit deciding mid-window hangs until the window
	// closes). Zero means one stall window [From, Until) — or
	// [From, From+Delay) when Until is unset.
	Every vtime.Ticks
}

// matches reports whether the rule applies to this decision at all.
func (r Rule) matches(file, call string, at vtime.Ticks) bool {
	if r.Call != "" && r.Call != call {
		return false
	}
	if at < r.From || (r.Until > 0 && at >= r.Until) {
		return false
	}
	switch {
	case r.File == "":
	case strings.HasSuffix(r.File, "*"):
		if !strings.HasPrefix(file, strings.TrimSuffix(r.File, "*")) {
			return false
		}
	default:
		if file != r.File {
			return false
		}
	}
	return true
}

// Program is a seed plus an ordered rule list: the first error-kind rule
// that fires wins; latency rules accumulate instead of terminating.
type Program struct {
	Seed  uint64
	Rules []Rule
}

// Stats counts injected outcomes per kind plus dead files.
type Stats struct {
	Transient int64
	Permanent int64
	Latency   int64
	Stuck     int64
	// Stalled counts units that hit a device-wide stall window; ReadOnly
	// counts write units rejected by a read-only file mark.
	Stalled       int64
	ReadOnly      int64
	DeadFiles     int
	ReadOnlyFiles int
}

// Plane is a compiled, stateful fault injector for one ssdio.Space.
type Plane struct {
	seed  uint64
	rules []Rule

	mu     sync.Mutex
	dead   map[string]bool // guarded by mu — files failed permanently
	rodead map[string]bool // guarded by mu — files whose write path died
	stats  Stats           // guarded by mu
}

// Plane implements ssdio.Injector.
var _ ssdio.Injector = (*Plane)(nil)

// New compiles a Program into a Plane.
func New(p Program) *Plane {
	rules := make([]Rule, len(p.Rules))
	copy(rules, p.Rules)
	return &Plane{seed: p.Seed, rules: rules, dead: make(map[string]bool), rodead: make(map[string]bool)}
}

// Stats snapshots the injection counters.
func (pl *Plane) Stats() Stats {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	s := pl.stats
	s.DeadFiles = len(pl.dead)
	s.ReadOnlyFiles = len(pl.rodead)
	return s
}

// Revive clears a file's permanent-failure and read-only marks (the
// simulated drive slice was replaced); Heal tests use it to let recovery
// succeed.
func (pl *Plane) Revive(file string) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	delete(pl.dead, file)
	delete(pl.rodead, file)
}

// Decide implements ssdio.Injector: one deterministic ruling per
// submission unit.
func (pl *Plane) Decide(file, call string, at vtime.Ticks, reqs []ssdio.Req) ssdio.FaultDecision {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.dead[file] {
		pl.stats.Permanent++
		return ssdio.FaultDecision{Err: &FaultError{Kind: Permanent, File: file, Call: call, At: at}}
	}
	if pl.rodead[file] && hasWrite(reqs) {
		pl.stats.ReadOnly++
		return ssdio.FaultDecision{Err: &FaultError{Kind: ReadOnly, File: file, Call: call, At: at}}
	}
	var delay vtime.Ticks
	for i, r := range pl.rules {
		if !r.matches(file, call, at) || !pl.fires(r, i, file, call, at, reqs) {
			continue
		}
		switch r.Kind {
		case Transient:
			pl.stats.Transient++
			return ssdio.FaultDecision{
				Err:   &FaultError{Kind: Transient, File: file, Call: call, At: at},
				Delay: delay + r.Delay,
			}
		case Permanent:
			pl.dead[file] = true
			pl.stats.Permanent++
			return ssdio.FaultDecision{
				Err:   &FaultError{Kind: Permanent, File: file, Call: call, At: at},
				Delay: delay + r.Delay,
			}
		case Latency:
			pl.stats.Latency++
			delay += r.Delay
		case Stuck:
			pl.stats.Stuck++
			d := r.Delay
			if d == 0 {
				d = defaultStuckDelay
			}
			return ssdio.FaultDecision{
				Err:   &FaultError{Kind: Stuck, File: file, Call: call, At: at},
				Delay: delay + d,
				Hang:  true,
			}
		case Stall:
			remain, active := stallRemaining(r, at)
			if !active {
				continue
			}
			pl.stats.Stalled++
			return ssdio.FaultDecision{Delay: delay + remain, Hang: true}
		case ReadOnly:
			pl.rodead[file] = true
			if !hasWrite(reqs) {
				continue // reads keep succeeding on a read-only device
			}
			pl.stats.ReadOnly++
			return ssdio.FaultDecision{
				Err:   &FaultError{Kind: ReadOnly, File: file, Call: call, At: at},
				Delay: delay + r.Delay,
			}
		}
	}
	return ssdio.FaultDecision{Delay: delay}
}

// stallRemaining computes how much of a stall rule's hang remains at the
// decision time, and whether the stall is active at all (a periodic rule
// is quiet between pulses).
func stallRemaining(r Rule, at vtime.Ticks) (vtime.Ticks, bool) {
	length := r.Delay
	if length == 0 {
		length = defaultStuckDelay
	}
	if r.Every > 0 {
		phase := (at - r.From) % r.Every
		if phase >= length {
			return 0, false
		}
		return length - phase, true
	}
	end := r.Until
	if end == 0 {
		end = r.From + length
	}
	if at >= end {
		return 0, false
	}
	return end - at, true
}

// hasWrite reports whether the unit contains any write request.
func hasWrite(reqs []ssdio.Req) bool {
	for _, r := range reqs {
		if r.Op == flashsim.Write {
			return true
		}
	}
	return false
}

// fires rolls the rule's deterministic dice for this decision.
func (pl *Plane) fires(r Rule, idx int, file, call string, at vtime.Ticks, reqs []ssdio.Req) bool {
	if r.P <= 0 || r.P >= 1 {
		return true
	}
	h := pl.seed ^ fnv64(file) ^ fnv64(call) ^ uint64(at) ^ uint64(idx)*0x9e3779b97f4a7c15
	if len(reqs) > 0 {
		h ^= uint64(reqs[0].Off)<<32 ^ uint64(len(reqs))
	}
	h = splitmix64(h)
	return float64(h>>11)/float64(1<<53) < r.P
}

// splitmix64 is the finalizer of the splitmix64 generator: a bijective
// avalanche over 64 bits, enough to decorrelate adjacent vtimes.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64 hashes a string (FNV-1a).
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// FaultError is one injected failure. Transient and Stuck faults carry
// the TransientIO marker that retry layers (core.IsTransientIO,
// ssdio.PartialGangError) classify on.
type FaultError struct {
	Kind Kind
	File string
	Call string
	At   vtime.Ticks
}

// ErrInjected tags every FaultError for errors.Is.
var ErrInjected = errors.New("faultio: injected fault")

func (e *FaultError) Error() string {
	return fmt.Sprintf("faultio: %s fault on %s (%s) at %s", e.Kind, e.File, e.Call, e.At)
}

// Unwrap lets errors.Is(err, ErrInjected) identify injected faults.
func (e *FaultError) Unwrap() error { return ErrInjected }

// TransientIO reports whether a retry of the failed unit may succeed.
func (e *FaultError) TransientIO() bool { return e.Kind == Transient || e.Kind == Stuck }
