package faultio

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/vtime"
)

// kindWord maps a Kind back to its clause keyword.
func kindWord(k Kind) string {
	switch k {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case Latency:
		return "latency"
	case Stuck:
		return "stuck"
	case Stall:
		return "stall"
	case ReadOnly:
		return "readonly"
	}
	return fmt.Sprintf("kind%d", k)
}

// formatProgram renders a parsed Program back into the fault language
// in canonical form: a seed clause, then one clause per rule with
// durations in nanoseconds and zero-valued fields omitted.
func formatProgram(p Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d\n", p.Seed)
	for _, r := range p.Rules {
		b.WriteString(kindWord(r.Kind))
		if r.File != "" {
			fmt.Fprintf(&b, " file=%s", r.File)
		}
		if r.Call != "" {
			fmt.Fprintf(&b, " call=%s", r.Call)
		}
		if r.P != 0 {
			fmt.Fprintf(&b, " p=%s", strconv.FormatFloat(r.P, 'g', -1, 64))
		}
		if r.From != 0 {
			fmt.Fprintf(&b, " from=%dns", r.From)
		}
		if r.Until != 0 {
			fmt.Fprintf(&b, " until=%dns", r.Until)
		}
		if r.Delay != 0 {
			fmt.Fprintf(&b, " delay=%dns", r.Delay)
		}
		if r.Every != 0 {
			fmt.Fprintf(&b, " every=%dns", r.Every)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FuzzParseFaults checks that Parse never panics, that every program it
// accepts is internally sane (probabilities in [0,1], durations
// non-negative and overflow-safe), and that the canonical re-rendering
// of an accepted program parses back to the identical Program.
func FuzzParseFaults(f *testing.F) {
	seeds := []string{
		"",
		"seed=7; transient call=sync p=0.002; transient call=psync p=0.002; transient call=gang p=0.004",
		"readonly file=wal2 from=8ms",
		"stall delay=20ms every=60ms from=1ms",
		"stuck call=gang file=shard0 until=5ms delay=2ms",
		"latency delay=200us p=0.1",
		"permanent file=pio-1-shard-2 from=30ms # dead controller",
		"transient file=wal* call=gang p=0.25 from=10ms until=50ms\nlatency delay=1us",
		"seed=18446744073709551615",
		"stall delay=1ns",
		"transient p=1.5",
		"latency",
		"stuck every=5ms",
		"from=3ms",
		"transient from=9999999999999999999999s",
		"latency delay=NaNms p=NaN",
		"readonly file== p=0",
		"transient file=a=b until=2µs",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		p1, err := Parse(text)
		if err != nil {
			return // rejection is fine; panics are not
		}
		for _, r := range p1.Rules {
			if !(r.P >= 0 && r.P <= 1) {
				t.Fatalf("accepted probability %v out of [0,1] in %+v", r.P, r)
			}
			for _, d := range []vtime.Ticks{r.From, r.Until, r.Delay, r.Every} {
				if d < 0 {
					t.Fatalf("accepted negative duration in %+v", r)
				}
			}
			if r.Every > 0 && r.Kind != Stall {
				t.Fatalf("every= accepted on non-stall rule %+v", r)
			}
			// Durations past float64's integer precision cannot re-render
			// exactly; the sanity checks above still ran.
			if r.From > 1<<52 || r.Until > 1<<52 || r.Delay > 1<<52 || r.Every > 1<<52 {
				return
			}
		}
		canon := formatProgram(p1)
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q failed to parse: %v", canon, text, err)
		}
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("round trip diverged:\n in:  %q -> %+v\n out: %q -> %+v", text, p1, canon, p2)
		}
	})
}
