// Package blink provides the concurrent B+-tree baseline of Section 4.2:
// a B-link tree (Lehman & Yao) "that can operate in multi-threads with a
// fine-grained locking". It layers a virtual-time lock model over the disk
// B+-tree substrate:
//
//   - searches take shared (timeline-only) access;
//   - updates serialize per key region through striped virtual mutexes,
//     modelling per-leaf exclusive latches without plumbing node paths;
//   - node I/O goes through a write-back buffer pool, so dirty-page
//     write-backs interleave reads and writes — the behaviour the paper
//     identifies as the B-link tree's main handicap against PIO B-tree
//     ("the buffer manager employed in B-link tree causes frequent dirty
//     buffer writes accompanied with buffer-miss reads").
//
// Real execution is serialized by the deterministic vtime scheduler, so
// the structure itself needs no Go-level locking; the vtime.Mutex stripes
// reproduce lock contention in simulated time.
package blink

import (
	"repro/internal/btree"
	"repro/internal/kv"
	"repro/internal/vtime"
)

// lockStripes is the granularity of the simulated fine-grained latches.
const lockStripes = 256

// Tree is a concurrent B-link tree in virtual time.
type Tree struct {
	bt      *btree.Tree
	latches [lockStripes]vtime.Mutex
	// LockOverhead is CPU time charged per latch acquire/release pair.
	LockOverhead vtime.Ticks
}

// New wraps a disk B+-tree (which must use a WriteBack pool, the default).
func New(bt *btree.Tree, lockOverhead vtime.Ticks) *Tree {
	return &Tree{bt: bt, LockOverhead: lockOverhead}
}

// Btree exposes the underlying B+-tree (bulk load, invariants).
func (t *Tree) Btree() *btree.Tree { return t.bt }

func stripe(k kv.Key) int {
	h := k * 0x9E3779B97F4A7C15
	return int(h % lockStripes)
}

// Search performs a concurrent point search: shared access, no exclusive
// wait (B-link readers never block).
func (t *Tree) Search(at vtime.Ticks, k kv.Key) (kv.Value, bool, vtime.Ticks, error) {
	return t.bt.Search(at+t.LockOverhead, k)
}

// RangeSearch walks the leaf chain, the legacy range search.
func (t *Tree) RangeSearch(at vtime.Ticks, lo, hi kv.Key) ([]kv.Record, vtime.Ticks, error) {
	return t.bt.RangeSearch(at+t.LockOverhead, lo, hi)
}

// Insert performs a latched insert: the key's stripe is held exclusively
// for the whole leaf update (read-modify-write), so concurrent writers to
// the same region serialize in virtual time.
func (t *Tree) Insert(at vtime.Ticks, r kv.Record) (vtime.Ticks, error) {
	m := &t.latches[stripe(r.Key)]
	start := m.Acquire(at) + t.LockOverhead
	done, err := t.bt.Insert(start, r)
	m.Release(done)
	return done, err
}

// Delete performs a latched delete.
func (t *Tree) Delete(at vtime.Ticks, k kv.Key) (bool, vtime.Ticks, error) {
	m := &t.latches[stripe(k)]
	start := m.Acquire(at) + t.LockOverhead
	ok, done, err := t.bt.Delete(start, k)
	m.Release(done)
	return ok, done, err
}

// Update performs a latched value update.
func (t *Tree) Update(at vtime.Ticks, r kv.Record) (bool, vtime.Ticks, error) {
	m := &t.latches[stripe(r.Key)]
	start := m.Acquire(at) + t.LockOverhead
	ok, done, err := t.bt.Update(start, r)
	m.Release(done)
	return ok, done, err
}

// ContentionStats sums latch waits and waited time across stripes.
func (t *Tree) ContentionStats() (waits int64, waited vtime.Ticks) {
	for i := range t.latches {
		waits += t.latches[i].Waits
		waited += t.latches[i].Contended
	}
	return waits, waited
}
