package blink

import (
	"testing"

	"repro/internal/btree"
	"repro/internal/flashsim"
	"repro/internal/kv"
	"repro/internal/pagefile"
	"repro/internal/ssdio"
	"repro/internal/vtime"
)

func newBlink(t *testing.T) *Tree {
	t.Helper()
	dev := flashsim.MustDevice(flashsim.P300())
	f, err := ssdio.NewSpace(dev).Create("blink", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := pagefile.New(f, 1024)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := btree.New(pf, btree.Config{NodeSize: 1024, BufferBytes: 8 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	return New(bt, vtime.Microsecond)
}

func TestBasicOps(t *testing.T) {
	b := newBlink(t)
	var at vtime.Ticks
	var err error
	for i := 0; i < 2000; i++ {
		at, err = b.Insert(at, kv.Record{Key: uint64(i), Value: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	v, found, at, err := b.Search(at, 1000)
	if err != nil || !found || v != 1000 {
		t.Fatalf("Search: %v %v %v", v, found, err)
	}
	ok, at, err := b.Update(at, kv.Record{Key: 1000, Value: 5})
	if err != nil || !ok {
		t.Fatalf("Update: %v %v", ok, err)
	}
	ok, at, err = b.Delete(at, 1001)
	if err != nil || !ok {
		t.Fatalf("Delete: %v %v", ok, err)
	}
	recs, _, err := b.RangeSearch(at, 100, 200)
	if err != nil || len(recs) != 100 {
		t.Fatalf("Range: %d %v", len(recs), err)
	}
	if err := b.Btree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestLatchContention: two simulated threads writing the same key region
// at the same virtual time must serialize on the stripe latch.
func TestLatchContention(t *testing.T) {
	b := newBlink(t)
	// Same key -> same stripe.
	d1, err := b.Insert(0, kv.Record{Key: 7, Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := b.Insert(0, kv.Record{Key: 7, Value: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= d1 {
		t.Fatalf("concurrent same-stripe inserts overlapped: %v vs %v", d1, d2)
	}
	waits, waited := b.ContentionStats()
	if waits == 0 || waited == 0 {
		t.Fatalf("no contention recorded: %d %v", waits, waited)
	}
}

// TestDifferentStripesOverlap: writers to different stripes at the same
// time may overlap (fine-grained locking benefit).
func TestDifferentStripesOverlap(t *testing.T) {
	b := newBlink(t)
	k1, k2 := uint64(1), uint64(2)
	if stripe(k1) == stripe(k2) {
		k2 = 3 // pick a different stripe
	}
	d1, err := b.Insert(0, kv.Record{Key: k1, Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := b.Insert(0, kv.Record{Key: k2, Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The second insert starts at 0 too; it may pay device-level queueing
	// but not the full serialization of d1 (write-ordering excepted: both
	// go to the same file, so allow the file lock serialization but not
	// double).
	if d2 > 2*d1 {
		t.Fatalf("different-stripe inserts appear serialized: %v vs %v", d1, d2)
	}
}
