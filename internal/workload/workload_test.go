package workload

import (
	"math"
	"testing"
)

func TestOpKindString(t *testing.T) {
	kinds := []OpKind{OpSearch, OpInsert, OpDelete, OpUpdate, OpRange, OpKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty name for kind %d", k)
		}
	}
}

func TestInitialKeysDistinctSorted(t *testing.T) {
	recs := InitialKeys(10000, 1)
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Key >= recs[i].Key {
			t.Fatalf("keys not strictly increasing at %d", i)
		}
	}
}

func TestMixedRatio(t *testing.T) {
	loaded := InitialKeys(1000, 1)
	for _, ratio := range []float64{0.1, 0.5, 0.9} {
		ops := Mixed(20000, ratio, loaded, 7)
		st := Measure(ops)
		got := st.Frac(OpInsert)
		if math.Abs(got-ratio) > 0.02 {
			t.Errorf("insert frac %.3f, want %.2f", got, ratio)
		}
		if st.Search+st.Insert != len(ops) {
			t.Errorf("unexpected op kinds in mixed workload")
		}
	}
}

func TestMixedInsertKeysAreFresh(t *testing.T) {
	loaded := InitialKeys(1000, 1)
	have := map[uint64]bool{}
	for _, r := range loaded {
		have[r.Key] = true
	}
	ops := Mixed(5000, 1.0, loaded, 3)
	seen := map[uint64]int{}
	for _, op := range ops {
		if have[op.Rec.Key] {
			t.Fatalf("insert key %d collides with loaded key", op.Rec.Key)
		}
		seen[op.Rec.Key]++
	}
	// Fresh keys may repeat only after cycling 15 offsets.
	for k, n := range seen {
		if n > 2 {
			t.Fatalf("insert key %d generated %d times", k, n)
		}
	}
}

func TestDeterminism(t *testing.T) {
	loaded := InitialKeys(100, 1)
	a := Mixed(1000, 0.5, loaded, 9)
	b := Mixed(1000, 0.5, loaded, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different workloads")
		}
	}
	c := Mixed(1000, 0.5, loaded, 10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestZipfSkew(t *testing.T) {
	loaded := InitialKeys(10000, 1)
	ops := Zipf(20000, loaded, 1.2, 5)
	counts := map[uint64]int{}
	for _, op := range ops {
		counts[op.Rec.Key]++
	}
	// The hottest key should be much hotter than the median.
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if max < 100 {
		t.Fatalf("zipf not skewed: max count %d", max)
	}
}

func TestTPCCTraceMixMatchesPaper(t *testing.T) {
	trace, initial := TPCCTrace(TPCCConfig{Ops: 50000, Seed: 3}, 5000)
	if len(initial) != 8 {
		t.Fatalf("relations = %d, want 8", len(initial))
	}
	st := Measure(trace)
	checks := []struct {
		kind OpKind
		want float64
	}{
		{OpSearch, 0.715}, {OpInsert, 0.238}, {OpRange, 0.037}, {OpDelete, 0.010},
	}
	for _, c := range checks {
		got := st.Frac(c.kind)
		if math.Abs(got-c.want) > 0.01 {
			t.Errorf("%v frac %.3f, want %.3f", c.kind, got, c.want)
		}
	}
}

func TestTPCCTraceHigherLocalityThanUniform(t *testing.T) {
	trace, _ := TPCCTrace(TPCCConfig{Ops: 20000, Seed: 3}, 5000)
	loaded := InitialKeys(5000*8, 1)
	uniform := Mixed(20000, 0.238, loaded, 3)
	locT := Locality(trace, 1000)
	locU := Locality(uniform, 1000)
	if locT <= locU {
		t.Fatalf("TPC-C locality %.3f not above uniform %.3f", locT, locU)
	}
}

func TestTPCCInsertsAscendPerRelation(t *testing.T) {
	trace, _ := TPCCTrace(TPCCConfig{Ops: 20000, Seed: 4}, 1000)
	last := map[int]uint64{}
	for _, op := range trace {
		if op.Kind != OpInsert {
			continue
		}
		if prev, ok := last[op.Relation]; ok && op.Rec.Key <= prev {
			t.Fatalf("relation %d insert keys not ascending: %d after %d", op.Relation, op.Rec.Key, prev)
		}
		last[op.Relation] = op.Rec.Key
	}
}

func TestMeasureAndFrac(t *testing.T) {
	ops := []Op{{Kind: OpSearch}, {Kind: OpInsert}, {Kind: OpUpdate}, {Kind: OpRange}, {Kind: OpDelete}}
	st := Measure(ops)
	if st.Search != 1 || st.Insert != 1 || st.Update != 1 || st.Range != 1 || st.Delete != 1 {
		t.Fatalf("measure wrong: %+v", st)
	}
	if st.Frac(OpSearch) != 0.2 {
		t.Fatalf("frac wrong: %f", st.Frac(OpSearch))
	}
	var empty Stats
	if empty.Frac(OpSearch) != 0 {
		t.Fatal("empty frac not 0")
	}
}
