// Package workload generates the operation streams of the paper's
// Section 4 evaluation: uniform and zipfian synthetic workloads with
// configurable insert/search ratios (Section 4.1), and a TPC-C-shaped
// index trace reproducing the statistics the paper reports for its
// Postgres trace (Section 4.2: 8 index relations; 71.5% point search,
// 23.8% insert, 3.7% range search, 1% delete; higher temporal and spatial
// locality than the synthetic workloads).
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/kv"
)

// OpKind enumerates index operations in a trace.
type OpKind uint8

const (
	// OpSearch is a point search.
	OpSearch OpKind = iota
	// OpInsert inserts a fresh record.
	OpInsert
	// OpDelete deletes a (probably existing) key.
	OpDelete
	// OpUpdate rewrites an existing key's pointer.
	OpUpdate
	// OpRange is a range search of Span keys.
	OpRange
)

// String names the op.
func (k OpKind) String() string {
	switch k {
	case OpSearch:
		return "search"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpUpdate:
		return "update"
	case OpRange:
		return "range"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Op is one trace operation. Relation selects the index (always 0 for
// synthetic workloads).
type Op struct {
	Kind     OpKind
	Relation int
	Rec      kv.Record
	Span     uint64 // key-range width for OpRange
}

// InitialKeys returns n distinct keys, uniformly spread with gaps so
// later inserts land between existing keys (the paper bulk-loads 1G
// entries then inserts fresh keys). Keys are odd multiples of stride.
func InitialKeys(n int, seed int64) []kv.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]kv.Record, n)
	for i := range recs {
		recs[i] = kv.Record{Key: uint64(i)*16 + 8, Value: rng.Uint64()}
	}
	return recs
}

// Mixed generates ops operations with the given insert ratio (the rest
// are point searches), the Section 4.1.4 workload family. Searches target
// loaded keys; inserts use fresh keys between existing ones.
func Mixed(ops int, insertRatio float64, loaded []kv.Record, seed int64) []Op {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Op, 0, ops)
	nextFresh := make(map[uint64]uint64) // base -> next offset (1..15)
	for i := 0; i < ops; i++ {
		if rng.Float64() < insertRatio {
			base := uint64(rng.Intn(len(loaded)))
			// Offsets 0..15 except 8 (the loaded-key slot).
			off := nextFresh[base] % 15
			if off >= 8 {
				off++
			}
			nextFresh[base]++
			out = append(out, Op{
				Kind: OpInsert,
				Rec:  kv.Record{Key: base*16 + off, Value: rng.Uint64()},
			})
		} else {
			r := loaded[rng.Intn(len(loaded))]
			out = append(out, Op{Kind: OpSearch, Rec: r})
		}
	}
	return out
}

// InsertOnly generates n fresh-key inserts (Section 4.1.3's update-only
// workload; the paper reports inserts since deletes/updates behave the
// same).
func InsertOnly(n int, loaded []kv.Record, seed int64) []Op {
	return Mixed(n, 1.0, loaded, seed)
}

// SearchOnly generates n point searches over loaded keys (Section 4.1.1).
func SearchOnly(n int, loaded []kv.Record, seed int64) []Op {
	return Mixed(n, 0.0, loaded, seed)
}

// Zipf generates a zipfian point-search workload (locality knob used by
// extension experiments).
func Zipf(n int, loaded []kv.Record, s float64, seed int64) []Op {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(len(loaded)-1))
	out := make([]Op, n)
	for i := range out {
		out[i] = Op{Kind: OpSearch, Rec: loaded[z.Uint64()]}
	}
	return out
}

// TPCCConfig shapes the TPC-C-like index trace.
type TPCCConfig struct {
	// Relations is the number of index relations (paper: 8).
	Relations int
	// Warehouses scales the key space hot-spotting (paper: 100).
	Warehouses int
	// Ops is the trace length (paper: 10M; scale down as needed).
	Ops int
	// Seed fixes the generator.
	Seed int64
	// Mix overrides the default op mix when non-zero; fractions of
	// search/insert/range/delete must sum to 1.
	SearchFrac, InsertFrac, RangeFrac, DeleteFrac float64
}

func (c *TPCCConfig) defaults() TPCCConfig {
	d := *c
	if d.Relations <= 0 {
		d.Relations = 8
	}
	if d.Warehouses <= 0 {
		d.Warehouses = 100
	}
	if d.SearchFrac == 0 && d.InsertFrac == 0 && d.RangeFrac == 0 && d.DeleteFrac == 0 {
		// The paper's measured trace mix.
		d.SearchFrac, d.InsertFrac, d.RangeFrac, d.DeleteFrac = 0.715, 0.238, 0.037, 0.010
	}
	return d
}

// TPCCTrace generates the index trace plus the per-relation initial keys
// to bulk load. The trace exhibits temporal locality (recent keys are
// re-touched with high probability) and spatial locality (inserts are
// ascending within a hot warehouse region), matching the paper's
// description of the Postgres/TPC-C trace.
func TPCCTrace(cfg TPCCConfig, initialPerRelation int) (trace []Op, initial [][]kv.Record) {
	c := cfg.defaults()
	rng := rand.New(rand.NewSource(c.Seed))
	initial = make([][]kv.Record, c.Relations)
	nextKey := make([]uint64, c.Relations)
	for r := range initial {
		initial[r] = InitialKeys(initialPerRelation, c.Seed+int64(r))
		nextKey[r] = uint64(initialPerRelation) * 16
	}
	// Recent-key windows provide temporal locality; the deleted sets keep
	// deletes targeting live keys only (as TPC-C's delivery transaction
	// deletes existing new-order rows).
	recent := make([][]kv.Record, c.Relations)
	deleted := make([]map[uint64]bool, c.Relations)
	for r := range deleted {
		deleted[r] = make(map[uint64]bool)
	}
	hotWarehouse := rng.Intn(c.Warehouses)
	trace = make([]Op, 0, c.Ops)
	for i := 0; i < c.Ops; i++ {
		// Hot warehouse drifts slowly (clients rotate).
		if rng.Float64() < 0.0005 {
			hotWarehouse = rng.Intn(c.Warehouses)
		}
		rel := relationFor(rng, c.Relations)
		x := rng.Float64()
		switch {
		case x < c.SearchFrac:
			trace = append(trace, Op{Kind: OpSearch, Relation: rel, Rec: pickKey(rng, recent[rel], initial[rel], hotWarehouse, c.Warehouses)})
		case x < c.SearchFrac+c.InsertFrac:
			// Ascending keys within the relation: order lines, history.
			k := nextKey[rel]
			nextKey[rel] += uint64(rng.Intn(16) + 1)
			rec := kv.Record{Key: k, Value: rng.Uint64()}
			trace = append(trace, Op{Kind: OpInsert, Relation: rel, Rec: rec})
			recent[rel] = append(recent[rel], rec)
			if len(recent[rel]) > 4096 {
				recent[rel] = recent[rel][len(recent[rel])-4096:]
			}
		case x < c.SearchFrac+c.InsertFrac+c.RangeFrac:
			span := uint64(1 << (4 + rng.Intn(8))) // 16..2048 key units
			trace = append(trace, Op{Kind: OpRange, Relation: rel, Rec: pickKey(rng, recent[rel], initial[rel], hotWarehouse, c.Warehouses), Span: span * 16})
		default:
			// Delete a live key: retry a few picks past already-deleted
			// keys, degrading to a point search when unlucky.
			var rec kv.Record
			ok := false
			for try := 0; try < 4; try++ {
				rec = pickKey(rng, recent[rel], initial[rel], hotWarehouse, c.Warehouses)
				if !deleted[rel][rec.Key] {
					ok = true
					break
				}
			}
			if ok {
				deleted[rel][rec.Key] = true
				trace = append(trace, Op{Kind: OpDelete, Relation: rel, Rec: rec})
			} else {
				trace = append(trace, Op{Kind: OpSearch, Relation: rel, Rec: rec})
			}
		}
	}
	return trace, initial
}

// relationFor skews accesses across relations (order-line and stock
// indexes absorb most traffic in TPC-C).
func relationFor(rng *rand.Rand, n int) int {
	x := rng.Float64()
	// Geometric-ish skew: relation 0 ~35%, 1 ~20%, ...
	cum := 0.0
	w := 0.35
	for r := 0; r < n-1; r++ {
		cum += w
		if x < cum {
			return r
		}
		w *= 0.65
	}
	return n - 1
}

// pickKey draws a key with temporal locality (recently inserted keys) and
// spatial locality (hot warehouse region of the initial keys).
func pickKey(rng *rand.Rand, recent, initial []kv.Record, hotWH, warehouses int) kv.Record {
	if len(recent) > 0 && rng.Float64() < 0.4 {
		return recent[len(recent)-1-rng.Intn(min(len(recent), 512))]
	}
	if rng.Float64() < 0.6 {
		// Hot warehouse region.
		per := len(initial) / warehouses
		if per < 1 {
			per = 1
		}
		base := hotWH * per
		idx := base + rng.Intn(per)
		if idx >= len(initial) {
			idx = len(initial) - 1
		}
		return initial[idx]
	}
	return initial[rng.Intn(len(initial))]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Stats summarizes a trace's op mix for validation.
type Stats struct {
	Search, Insert, Delete, Update, Range int
}

// Measure counts ops by kind.
func Measure(trace []Op) Stats {
	var s Stats
	for _, op := range trace {
		switch op.Kind {
		case OpSearch:
			s.Search++
		case OpInsert:
			s.Insert++
		case OpDelete:
			s.Delete++
		case OpUpdate:
			s.Update++
		case OpRange:
			s.Range++
		}
	}
	return s
}

// Frac returns the fraction of total ops that k represents.
func (s Stats) Frac(k OpKind) float64 {
	total := s.Search + s.Insert + s.Delete + s.Update + s.Range
	if total == 0 {
		return 0
	}
	var n int
	switch k {
	case OpSearch:
		n = s.Search
	case OpInsert:
		n = s.Insert
	case OpDelete:
		n = s.Delete
	case OpUpdate:
		n = s.Update
	case OpRange:
		n = s.Range
	}
	return float64(n) / float64(total)
}

// Locality measures a trace's temporal locality as the fraction of
// non-insert ops whose key was touched within the previous w ops; the
// paper notes the TPC-C trace "showed higher temporal and spatial
// localities of index operations than synthetic workloads".
func Locality(trace []Op, w int) float64 {
	seen := make(map[uint64]int)
	hits, total := 0, 0
	for i, op := range trace {
		if op.Kind != OpInsert {
			total++
			if last, ok := seen[op.Rec.Key]; ok && i-last <= w {
				hits++
			}
		}
		seen[op.Rec.Key] = i
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
